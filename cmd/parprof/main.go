// Command parprof runs a workload under the host-side execution
// observatory (internal/hostprof) and renders how the sharded
// parallel-tick scheduler actually spent the host's time: scheduling
// window shape, per-worker tick balance, gate-wait attribution by
// (waiter, laggard peer, gate site), and an Amdahl-style speedup
// decomposition explaining the gap between ideal and measured -sim-jobs
// scaling.
//
// The recorder observes the host schedule, never sim state, so —
// unlike guest -trace/-prof — attaching it does NOT force the run
// serial: simulated output stays byte-identical at any -sim-jobs (the
// parallel-identity tests pin this). The "schedule shape" section of
// the report is deterministic for a given worker count; the host-timing
// sections are wall clock and vary run to run (-sim-only restricts the
// report to the deterministic half, which is what the host-prof-smoke
// CI check diffs).
//
// Usage:
//
//	parprof -workload mp3d -quick                   # all three architectures, 4 workers
//	parprof -workload mp3d -quick -membound         # memory-bound sentinel parameters
//	parprof -workload ear -arch shared-mem -sim-jobs 2
//	parprof -workload mp3d -quick -json par.json    # also save raw profiles
//	parprof -in par.shared-mem.json                 # re-render a saved profile
//	parprof -workload fft -quick -trace host.trace  # Chrome host timeline
//	parprof -workload fft -quick -jsonl host.jsonl  # tracestats -tracks host input
//
// Offline layout work against a saved profile (no simulation):
//
//	parprof -in par.json -score-layout 0,1,0,1      # score one CPU→worker assignment
//	parprof -in par.json -suggest-layout 2          # search for the best ≤2-worker layout
//	parprof -diff old.json new.json                 # what changed between two profiles
//
// A suggested layout feeds straight back into any simulating command
// via -shard-layout (cmpsim, experiments, sweep, parprof itself);
// output stays byte-identical under every layout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"cmpsim/internal/benchfig"
	"cmpsim/internal/core"
	"cmpsim/internal/hostprof"
	"cmpsim/internal/memsys"
	"cmpsim/internal/obsv"
	"cmpsim/internal/runner"
	"cmpsim/internal/telemetry"
	"cmpsim/internal/workload"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parprof:", err)
	os.Exit(1)
}

// splice inserts arch before the extension when several architectures
// run in one invocation ("par.json" → "par.shared-mem.json").
func splice(path, arch string, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "." + arch + ext
}

// readProfile loads a profile saved by -json.
func readProfile(path string) (*hostprof.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hostprof.ReadProfile(f)
}

// printScore renders one offline layout evaluation.
func printScore(sc hostprof.LayoutScore) {
	fmt.Printf("layout %s (%d workers, shards", sc.Layout, sc.Workers)
	for w, ids := range sc.Shards {
		fmt.Printf(" %d:%v", w, ids)
	}
	fmt.Printf(")\n")
	fmt.Printf("  gate-wait: total %s, eliminated by co-location %s, residual cross-shard %s\n",
		fmtDur(sc.TotalWaitNs), fmtDur(sc.EliminatedWaitNs), fmtDur(sc.CrossWaitNs))
	fmt.Printf("  balance: heaviest shard holds %.1f%% of ticks %v\n",
		100*sc.MaxShardTickFrac, sc.ShardTicks)
	fmt.Printf("  predicted critical path: %s (lower is better; compare against other layouts on this profile)\n",
		fmtDur(sc.PredictedNs))
}

func fmtDur(ns uint64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// writeFile creates path and hands it to fn, folding the close error
// into fn's.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	var (
		wlName   = flag.String("workload", "", "workload to profile (see cmpsim -list)")
		archStr  = flag.String("arch", "all", "architecture: shared-l1, shared-l2, shared-mem, or all")
		model    = flag.String("model", "mxs", "CPU model: mipsy or mxs")
		cpus     = flag.Int("cpus", 0, "override processor count (0 = configuration default)")
		quick    = flag.Bool("quick", false, "use reduced data sets (smoke runs)")
		membound = flag.Bool("membound", false, "use the memory-latency-bound sentinel parameters (internal/benchfig)")
		simJobs  = flag.Int("sim-jobs", 4, "worker goroutines per simulation (the knob being profiled); output is byte-identical for any value")
		top      = flag.Int("top", 15, "rows in the gate-wait table")
		jobs     = flag.Int("jobs", 0, "max concurrent architecture runs (0 = GOMAXPROCS); the schedule-shape section is identical for any value")
		progress = flag.Bool("progress", false, "print per-job completion lines on stderr; stdout is unaffected")
		simOnly  = flag.Bool("sim-only", false, "print only the deterministic schedule-shape section (no wall-clock timings)")
		jsonOut  = flag.String("json", "", "write each run's raw profile as JSON to this file (arch spliced in before the extension)")
		folded   = flag.String("folded", "", "write folded host-time lines (flamegraph.pl input) to this file")
		traceOut = flag.String("trace", "", "write the host-timeline Chrome trace (chrome://tracing, Perfetto) to this file")
		jsonlOut = flag.String("jsonl", "", "write host-timeline events as JSONL (cmd/tracestats -tracks host input) to this file")
		in       = flag.String("in", "", "render a previously saved profile JSON and exit (no simulation)")
		layout   = flag.String("shard-layout", "", "explicit CPU→worker assignment, e.g. 0,1,0,1 (empty = default contiguous split); output is byte-identical for any layout")
		adapt    = flag.Bool("sim-window-adapt", false, "let the coordinator pick window sizes from observed schedule shape (output is byte-identical)")
		scoreLay = flag.String("score-layout", "", "with -in: score this CPU→worker assignment against the saved profile and exit")
		suggest  = flag.Int("suggest-layout", 0, "with -in: search for the best layout using at most N workers and exit")
		diff     = flag.Bool("diff", false, "compare two saved profiles: parprof -diff old.json new.json")
	)
	var telem telemetry.Flags
	telem.Register()
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "parprof: -diff needs exactly two profile files: parprof -diff old.json new.json")
			os.Exit(2)
		}
		old, err := readProfile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := readProfile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		if err := hostprof.WriteDiff(os.Stdout, old, cur, *top); err != nil {
			fatal(err)
		}
		return
	}

	if *in != "" {
		p, err := readProfile(*in)
		if err != nil {
			fatal(err)
		}
		switch {
		case *scoreLay != "":
			shards, err := hostprof.ParseShardLayout(*scoreLay, p.CPUs)
			if err != nil {
				fatal(err)
			}
			printScore(hostprof.ScoreLayout(p, shards))
		case *suggest > 0:
			sc, err := hostprof.SuggestLayout(p, *suggest)
			if err != nil {
				fatal(err)
			}
			printScore(sc)
			fmt.Printf("rerun with: -shard-layout %s\n", sc.Layout)
		default:
			if err := p.WriteReport(os.Stdout, *top, *simOnly); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *scoreLay != "" || *suggest > 0 {
		fmt.Fprintln(os.Stderr, "parprof: -score-layout/-suggest-layout need a saved profile via -in")
		os.Exit(2)
	}
	if *wlName == "" {
		fmt.Fprintln(os.Stderr, "parprof: -workload is required (or -in to render a saved profile)")
		os.Exit(2)
	}

	var arches []core.Arch
	if *archStr == "all" {
		arches = core.Arches()
	} else {
		arches = []core.Arch{core.Arch(*archStr)}
	}

	set, err := telem.Start()
	if err != nil {
		fatal(err)
	}
	defer telem.Close()

	pool := &runner.Pool{Workers: *jobs}
	if *progress {
		pool.Progress = os.Stderr
	}
	if set != nil {
		pool.Telem = set.Runner
	}

	variant := "full"
	if *quick {
		variant = "quick"
	}
	recs := make([]*hostprof.Recorder, len(arches))
	archJobs := make([]runner.Job, len(arches))
	for i, a := range arches {
		cfg := memsys.DefaultConfig()
		if *membound {
			if core.CPUModel(*model) == core.ModelMXS {
				cfg = benchfig.MXSMemBoundConfig()
			} else {
				cfg = benchfig.MemBoundConfig()
			}
		}
		if *cpus > 0 {
			cfg.NumCPUs = *cpus
		}
		cfg.SimJobs = *simJobs
		cfg.ShardLayout = *layout
		cfg.AdaptWindow = *adapt
		recs[i] = hostprof.New()
		cfg.HostProf = recs[i]
		if set != nil {
			cfg.Telem = set.Sim
		}
		name := *wlName
		q := *quick
		archJobs[i] = runner.Job{
			Workload: func() (workload.Workload, error) {
				if q {
					return workload.NewQuick(name)
				}
				return workload.New(name)
			},
			WorkloadKey: name + "/" + variant,
			Arch:        a,
			Model:       core.CPUModel(*model),
			Cfg:         cfg,
			Tag:         name + "-" + string(a),
		}
	}

	results := pool.Run(archJobs)
	if err := runner.FirstErr(results); err != nil {
		fatal(err)
	}

	multi := len(arches) > 1
	for i, a := range arches {
		p := recs[i].Snapshot(*wlName, string(a), *model)
		if err := p.WriteReport(os.Stdout, *top, *simOnly); err != nil {
			fatal(err)
		}
		if *jsonOut != "" {
			path := splice(*jsonOut, string(a), multi)
			if err := writeFile(path, p.WriteJSON); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote profile to %s\n", path)
		}
		if *folded != "" {
			path := splice(*folded, string(a), multi)
			if err := writeFile(path, p.WriteFolded); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote folded host time to %s\n", path)
		}
		if *traceOut != "" {
			path := splice(*traceOut, string(a), multi)
			if err := writeFile(path, p.WriteChromeTrace); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote host timeline to %s\n", path)
		}
		if *jsonlOut != "" {
			path := splice(*jsonlOut, string(a), multi)
			if err := writeFile(path, func(w io.Writer) error {
				return obsv.WriteJSONL(w, p.Events())
			}); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote host events to %s\n", path)
		}
	}
}
