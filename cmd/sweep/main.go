// Command sweep explores the design space around the paper's
// configuration: it varies one memory-system parameter across a list of
// values and reports cycles, speedup and the key miss rates for each
// point. This is the style of study the authors' earlier work ("Exploring
// the Design Space for a Shared-Cache Multiprocessor", ISCA '94) ran,
// applied to this simulator.
//
// Sweep points are independent simulations, so they are dispatched
// through the internal/runner pool: -jobs shards them across cores
// (the printed table is identical for any worker count) and -cache-dir
// memoizes each point, so re-sweeping with an extended value list only
// simulates the new points.
//
//	sweep -workload mp3d -arch shared-l1 -param l2assoc -values 1,2,4,8
//	sweep -workload ear -arch shared-l1 -param sharedl1hit -values 1,2,3,5
//	sweep -workload ocean -arch shared-l2 -param sharedl2occ -values 1,2,4,8
//	sweep -workload eqntott -arch shared-mem -param c2clat -values 50,60,80,120 -jobs 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cmpsim/internal/core"
	"cmpsim/internal/hostprof"
	"cmpsim/internal/memsys"
	"cmpsim/internal/runner"
	"cmpsim/internal/telemetry"
	"cmpsim/internal/workload"
)

// params maps sweepable parameter names to setters on the config.
var params = map[string]struct {
	help string
	set  func(*memsys.Config, uint64)
}{
	"l1dsize":      {"private L1 D-cache bytes", func(c *memsys.Config, v uint64) { c.L1DSize = uint32(v) }},
	"l1isize":      {"private L1 I-cache bytes", func(c *memsys.Config, v uint64) { c.L1ISize = uint32(v) }},
	"sharedl1size": {"shared L1 bytes", func(c *memsys.Config, v uint64) { c.SharedL1Size = uint32(v) }},
	"sharedl1hit": {"shared L1 hit latency (cycles); >1 also enables bank contention", func(c *memsys.Config, v uint64) {
		c.SharedL1HitLat = v
		c.SharedL1BankContention = v > 1
	}},
	"sharedl1banks": {"shared L1 bank count", func(c *memsys.Config, v uint64) {
		c.SharedL1Banks = uint32(v)
		c.SharedL1BankContention = true
	}},
	"l2assoc":     {"L2 associativity", func(c *memsys.Config, v uint64) { c.L2Assoc = uint32(v) }},
	"l2lat":       {"uniprocessor-style L2 latency", func(c *memsys.Config, v uint64) { c.L2Lat = v }},
	"sharedl2lat": {"crossbar L2 latency", func(c *memsys.Config, v uint64) { c.SharedL2Lat = v }},
	"sharedl2occ": {"crossbar L2 line occupancy (datapath width)", func(c *memsys.Config, v uint64) { c.SharedL2Occ = v }},
	"memlat":      {"main memory latency", func(c *memsys.Config, v uint64) { c.MemLat = v }},
	"c2clat":      {"cache-to-cache transfer latency", func(c *memsys.Config, v uint64) { c.C2CLat = v }},
	"mshrs":       {"outstanding misses per cache port", func(c *memsys.Config, v uint64) { c.MSHRs = int(v) }},
	"wbuf":        {"write buffer depth", func(c *memsys.Config, v uint64) { c.WriteBufDepth = int(v) }},
	"privl2size":  {"private L2 bytes per CPU (shared-mem)", func(c *memsys.Config, v uint64) { c.PrivL2Size = uint32(v) }},
	"cpus": {"processor count — the CMP scaling axis (workloads re-decompose; ocean needs 4)",
		func(c *memsys.Config, v uint64) { c.NumCPUs = int(v) }},
}

func main() {
	wlName := flag.String("workload", "ear", "workload to sweep")
	archStr := flag.String("arch", "shared-l1", "architecture")
	param := flag.String("param", "", "parameter to sweep (see -params)")
	values := flag.String("values", "", "comma-separated values")
	model := flag.String("model", "mipsy", "cpu model")
	jobs := flag.Int("jobs", 0, "max concurrent sweep points (0 = GOMAXPROCS); output is identical for any value")
	cacheDir := flag.String("cache-dir", "", "memoize sweep-point results as JSON under this directory (\"\" = off)")
	progress := flag.Bool("progress", false, "print per-job completion lines (wall time, cache status) on stderr; stdout is unaffected")
	list := flag.Bool("params", false, "list sweepable parameters")
	noSkip := flag.Bool("no-skip", false, "disable quiescence skipping in the cycle loop (slower; output is identical)")
	simJobs := flag.Int("sim-jobs", 1, "shard each simulation's CPUs across up to N host goroutines (1 = serial; output is identical for any value; composes with -jobs under a host-core cap)")
	layout := flag.String("shard-layout", "", "explicit CPU→worker assignment for the parallel tick, e.g. 0,1,0,1 (empty = contiguous split; parprof -suggest-layout proposes one; output is identical for any layout)")
	adaptWin := flag.Bool("sim-window-adapt", false, "let the parallel-tick coordinator fast-forward quiescent stretches and retune window sizes from observed tick density (output is identical)")
	hostProfOut := flag.String("host-prof-out", "", "write per-point host-schedule profiles as JSON (cmd/parprof -in reads them); the point tag is spliced in before the extension")
	var telem telemetry.Flags
	telem.Register()
	telem.RegisterReport()
	flag.Parse()

	if *list {
		names := make([]string, 0, len(params))
		for name := range params {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-14s %s\n", name, params[name].help)
		}
		return
	}
	p, ok := params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown -param %q (try -params)\n", *param)
		os.Exit(2)
	}
	if *values == "" {
		fmt.Fprintln(os.Stderr, "sweep: -values is required")
		os.Exit(2)
	}

	set, err := telem.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	defer telem.Close()

	pool := &runner.Pool{Workers: runner.CapWorkers(*jobs, *simJobs)}
	if *progress {
		pool.Progress = os.Stderr
	}
	if set != nil {
		pool.Telem = set.Runner
	}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		pool.Cache = cache
	}

	var points []uint64
	var sweepJobs []runner.Job
	var hostRecs []*hostprof.Recorder
	for _, vs := range strings.Split(*values, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(vs), 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
		cfg := memsys.DefaultConfig()
		p.set(&cfg, v)
		cfg.NoSkip = *noSkip
		cfg.SimJobs = *simJobs
		cfg.ShardLayout = *layout
		cfg.AdaptWindow = *adaptWin
		if set != nil {
			cfg.Telem = set.Sim
		}
		var hrec *hostprof.Recorder
		if *hostProfOut != "" {
			// Host-schedule observer: never forces the point serial, so
			// -host-prof-out composes with -sim-jobs.
			hrec = hostprof.New()
			cfg.HostProf = hrec
		}
		hostRecs = append(hostRecs, hrec)
		name := *wlName
		points = append(points, v)
		sweepJobs = append(sweepJobs, runner.Job{
			Workload:    func() (workload.Workload, error) { return workload.New(name) },
			WorkloadKey: name + "/full",
			Arch:        core.Arch(*archStr),
			Model:       core.CPUModel(*model),
			Cfg:         cfg,
			Tag:         fmt.Sprintf("%s-%s-%s-%d", name, *archStr, *param, v),
		})
	}

	results := pool.Run(sweepJobs)

	fmt.Printf("sweeping %s on %s/%s (%s model)\n", *param, *wlName, *archStr, *model)
	fmt.Printf("%12s %12s %8s %8s %8s %8s %8s\n", *param, "cycles", "speedup", "L1R%", "L1I%", "L2R%", "L2I%")
	var base float64
	for i, r := range results {
		// Any failed point is a broken sweep: report it and exit non-zero
		// so CI cannot mistake a partial table for a finished study.
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", r.Err)
			os.Exit(1)
		}
		res := r.Res
		if base == 0 {
			base = float64(res.Cycles)
		}
		rep := res.MemReport
		fmt.Printf("%12d %12d %7.2fx %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			points[i], res.Cycles, base/float64(res.Cycles),
			100*rep.L1D.ReplRate(), 100*rep.L1D.InvRate(),
			100*rep.L2.ReplRate(), 100*rep.L2.InvRate())
		if rec := hostRecs[i]; rec != nil {
			hp := rec.Snapshot(*wlName, *archStr, *model)
			ext := filepath.Ext(*hostProfOut)
			path := (*hostProfOut)[:len(*hostProfOut)-len(ext)] + "." + sweepJobs[i].Tag + ext
			f, err := os.Create(path)
			if err == nil {
				err = hp.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			fmt.Printf("  [host-prof] wrote %s\n", path)
		}
	}
}
