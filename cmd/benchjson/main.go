// Command benchjson establishes the simulator's performance baseline:
// it measures every figure benchmark of the shared internal/benchfig
// matrix twice — once with the quiescence-skipping scheduler (the
// default) and once with Config.NoSkip (the cmpsim -no-skip reference
// loop) — via testing.Benchmark, and writes the results to
// BENCH_figures.json: ns/op, simulated-cycles-per-second and the
// skip-vs-no-skip speedup per figure. CI uploads the file as an
// artifact so future PRs have a perf trajectory to regress against.
//
//	benchjson                         # all figures -> BENCH_figures.json
//	benchjson -figures 'MP3D|Ocean'   # subset, same file
//	benchjson -out /dev/stdout        # print instead of writing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"

	"cmpsim/internal/benchfig"
)

// figureRow is one figure's measurements. Simulated cycle counts are
// identical with and without skipping (the scheduler is observably
// invisible; see skip_test.go), so one sim_cycles_per_op field serves
// both throughput numbers.
type figureRow struct {
	Name                string  `json:"name"`
	Model               string  `json:"model"`
	SimCyclesPerOp      uint64  `json:"sim_cycles_per_op"`
	SkipNsPerOp         int64   `json:"skip_ns_per_op"`
	SkipSimCyclesPerS   float64 `json:"skip_sim_cycles_per_sec"`
	NoSkipNsPerOp       int64   `json:"noskip_ns_per_op"`
	NoSkipSimCyclesPerS float64 `json:"noskip_sim_cycles_per_sec"`
	Speedup             float64 `json:"speedup"`
}

// report is the BENCH_figures.json schema. No timestamp on purpose:
// the committed baseline should only diff when the numbers move.
type report struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	NumCPU    int         `json:"num_cpu"`
	Figures   []figureRow `json:"figures"`
}

// benchFigure times one (figure, noSkip) cell and returns the result
// plus the simulated cycles of a single op.
func benchFigure(f benchfig.Figure, noSkip bool) (testing.BenchmarkResult, uint64, error) {
	var cycles uint64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		cfg := f.Config()
		cfg.NoSkip = noSkip
		for i := 0; i < b.N; i++ {
			_, c, err := benchfig.Run(f, &cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			cycles = c
		}
	})
	return r, cycles, runErr
}

func cyclesPerSec(cycles uint64, nsPerOp int64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(cycles) / (float64(nsPerOp) * 1e-9)
}

func main() {
	out := flag.String("out", "BENCH_figures.json", "output path")
	figures := flag.String("figures", "", "regexp selecting figure names (\"\" = all)")
	verbose := flag.Bool("v", true, "print a progress line per figure on stderr")
	flag.Parse()

	var sel *regexp.Regexp
	if *figures != "" {
		re, err := regexp.Compile(*figures)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		sel = re
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, f := range benchfig.Figures() {
		if sel != nil && !sel.MatchString(f.Name) {
			continue
		}
		skip, cycles, err := benchFigure(f, false)
		if err == nil {
			var ref testing.BenchmarkResult
			ref, _, err = benchFigure(f, true)
			if err == nil {
				row := figureRow{
					Name:                f.Name,
					Model:               string(f.Model),
					SimCyclesPerOp:      cycles,
					SkipNsPerOp:         skip.NsPerOp(),
					SkipSimCyclesPerS:   cyclesPerSec(cycles, skip.NsPerOp()),
					NoSkipNsPerOp:       ref.NsPerOp(),
					NoSkipSimCyclesPerS: cyclesPerSec(cycles, ref.NsPerOp()),
				}
				if row.SkipNsPerOp > 0 {
					row.Speedup = float64(row.NoSkipNsPerOp) / float64(row.SkipNsPerOp)
				}
				rep.Figures = append(rep.Figures, row)
				if *verbose {
					fmt.Fprintf(os.Stderr, "%-22s %12d sim-cycles  skip %10dns/op  no-skip %10dns/op  %.2fx\n",
						f.Name, row.SimCyclesPerOp, row.SkipNsPerOp, row.NoSkipNsPerOp, row.Speedup)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", f.Name, err)
			os.Exit(1)
		}
	}

	w, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err == nil {
		err = w.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
