// Command benchjson establishes the simulator's performance baseline:
// it measures every figure benchmark of the shared internal/benchfig
// matrix twice — once with the quiescence-skipping scheduler (the
// default) and once with Config.NoSkip (the cmpsim -no-skip reference
// loop) — via testing.Benchmark, and writes the results to
// BENCH_figures.json: ns/op, simulated-cycles-per-second and the
// skip-vs-no-skip speedup per figure. CI uploads the file as an
// artifact so future PRs have a perf trajectory to regress against.
//
// Detailed-CPU (MXS) rows are additionally measured with the parallel
// tick scheduler, profile-guided: an untimed -sim-jobs 2 identity run
// under the default contiguous layout carries an internal/hostprof
// recorder, the profile it yields feeds the offline shard-layout
// search (hostprof.SuggestLayout, the cmd/parprof -suggest-layout
// engine), and the timed parallel cells adopt the suggested layout —
// recorded as par_layout. The simulated cycle count must match the
// serial run exactly under both the default and the adopted layout,
// and the wall-clock ratio against the same sample's serial run is
// recorded as par_speedup. A row whose parallel run is slower than its
// serial run is marked par_regression: true and excluded from the
// gate's parallel floor — the mark makes honest baselines from hosts
// where sharding cannot win committable without disarming the gate
// everywhere else.
//
// With -gate it becomes the CI perf gate instead: it re-measures the
// matrix and compares against the committed baseline without writing
// anything. Simulated cycle counts must match the baseline exactly
// (they are deterministic; a mismatch means the baseline is stale and
// must be regenerated). Wall-clock figures differ across hardware, so
// the gate checks dimensionless same-host speedups instead of ns/op:
// Mipsy MemBound rows must keep a skip-vs-no-skip speedup of at least
// 2x, the MXS MemBound row must keep a parallel-vs-serial speedup of
// at least 1.5x (1.4x on hosts with fewer than four cores, where the
// win comes from the per-CPU local skip plus the adopted layout), and
// every other row must stay within ±30% of its baseline skip speedup.
// The MXS MemBound row's gate_wait_frac must also stay within 5 points
// of the committed baseline when the adopted layout matches — the
// ceiling that keeps the spent-down gate wait spent. -samples N
// measures each cell N times and takes the median, damping scheduler
// noise on shared CI runners.
//
//	benchjson                         # all figures -> BENCH_figures.json
//	benchjson -figures 'MP3D|Ocean'   # subset, same file
//	benchjson -out /dev/stdout        # print instead of writing
//	benchjson -gate BENCH_figures.json -samples 3   # CI perf gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"cmpsim/internal/benchfig"
	"cmpsim/internal/core"
	"cmpsim/internal/hostprof"
)

// figureRow is one figure's measurements. Simulated cycle counts are
// identical with and without skipping (the scheduler is observably
// invisible; see skip_test.go), so one sim_cycles_per_op field serves
// both throughput numbers.
type figureRow struct {
	Name                string  `json:"name"`
	Model               string  `json:"model"`
	SimCyclesPerOp      uint64  `json:"sim_cycles_per_op"`
	SkipNsPerOp         int64   `json:"skip_ns_per_op"`
	SkipSimCyclesPerS   float64 `json:"skip_sim_cycles_per_sec"`
	NoSkipNsPerOp       int64   `json:"noskip_ns_per_op"`
	NoSkipSimCyclesPerS float64 `json:"noskip_sim_cycles_per_sec"`
	Speedup             float64 `json:"speedup"`

	// Parallel-tick measurement (MXS rows only; zero elsewhere).
	// ParSpeedup is the median of per-sample serial/parallel ratios;
	// each ratio pairs back-to-back runs of the same sample. Simulated
	// cycles are verified identical at every worker count and layout,
	// so SimCyclesPerOp serves the parallel throughput number too.
	// ParLayout is the CPU→worker assignment the timed cells ran under:
	// the offline layout search's suggestion from the default-layout
	// profiling run ("" = the search kept the default contiguous
	// split). ParRegression marks a row whose parallel run lost to its
	// serial run on this host; the gate excludes marked rows from the
	// parallel floor.
	ParJobs          int     `json:"par_jobs,omitempty"`
	ParLayout        string  `json:"par_layout,omitempty"`
	ParNsPerOp       int64   `json:"par_ns_per_op,omitempty"`
	ParSimCyclesPerS float64 `json:"par_sim_cycles_per_sec,omitempty"`
	ParSpeedup       float64 `json:"par_speedup,omitempty"`
	ParRegression    bool    `json:"par_regression,omitempty"`

	// GateWaitFrac is the share of busy worker time the parallel-tick
	// run spent spinning at tick gates, measured by an internal/hostprof
	// recorder on the untimed identity-check run under the adopted
	// layout (MXS rows; zero for serial-only rows). It explains a
	// par_speedup gap — a row near 0 is barrier/serial-bound, a row near
	// 0.5 loses half its worker time to cross-shard waiting. The gate
	// checks it stays in [0,1] everywhere and, on the MXS MemBound
	// sentinel with a matching layout, within gateWaitSlack of the
	// baseline.
	GateWaitFrac float64 `json:"gate_wait_frac"`
}

// report is the BENCH_figures.json schema. No timestamp on purpose:
// the committed baseline should only diff when the numbers move.
type report struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	NumCPU    int         `json:"num_cpu"`
	Figures   []figureRow `json:"figures"`
}

// benchFigure times one (figure, noSkip, simJobs, layout) cell and
// returns the result plus the simulated cycles of a single op.
func benchFigure(f benchfig.Figure, noSkip bool, simJobs int, layout string) (testing.BenchmarkResult, uint64, error) {
	var cycles uint64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		cfg := f.Config()
		cfg.NoSkip = noSkip
		cfg.SimJobs = simJobs
		cfg.ShardLayout = layout
		for i := 0; i < b.N; i++ {
			_, c, err := benchfig.Run(f, &cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			cycles = c
		}
	})
	return r, cycles, runErr
}

// parJobs is the worker count of the parallel-tick measurement cell.
const parJobs = 4

func cyclesPerSec(cycles uint64, nsPerOp int64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(cycles) / (float64(nsPerOp) * 1e-9)
}

// medianInt64 returns the median of vs (which must be non-empty).
func medianInt64(vs []int64) int64 {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs[len(vs)/2]
}

func medianFloat64(vs []float64) float64 {
	sort.Float64s(vs)
	return vs[len(vs)/2]
}

// measureFigure measures one figure samples times and combines the
// runs: ns/op per cell is the median across samples, and the speedup is
// the median of the per-sample skip/no-skip ratios — each ratio pairs
// two back-to-back runs, so load common to both cancels out instead of
// skewing the quotient of two independently-noisy medians. Sim cycles
// must be identical across every sample — they are deterministic, and a
// drift here is a simulator bug worth dying on.
// MXS figures additionally measure the parallel tick scheduler at
// parJobs workers, profile-guided in two untimed stages around the
// timed cells: first an identity-check run at -sim-jobs 2 under the
// default contiguous layout carries a hostprof recorder whose profile
// feeds the offline layout search; the timed parallel cells then adopt
// the suggested layout, pairing each sample's parallel run against
// that sample's serial skip run for the par_speedup ratio. A second
// untimed identity run under the adopted layout yields the row's
// gate_wait_frac. Simulated cycles must match the serial run exactly
// in every stage — the identity guarantee is "every worker count and
// layout", not one lucky shard shape.
func measureFigure(f benchfig.Figure, samples int) (figureRow, error) {
	par := f.Model == core.ModelMXS
	var parLayout string
	var profCycles uint64
	if par {
		// Stage 1: profile the default layout. The run doubles as the
		// -sim-jobs 2 identity check (cycles verified against the serial
		// runs below) and proves host-side observation composes with the
		// parallel tick.
		cfg := f.Config()
		cfg.SimJobs = 2
		rec := hostprof.New()
		cfg.HostProf = rec
		_, c, err := benchfig.Run(f, &cfg)
		if err != nil {
			return figureRow{}, err
		}
		profCycles = c
		if sc, err := hostprof.SuggestLayout(rec.Snapshot("", "", ""), parJobs); err == nil {
			parLayout = sc.Layout
		}
	}
	var skipNs, noSkipNs, parNs []int64
	var ratios, parRatios []float64
	var cycles uint64
	for s := 0; s < samples; s++ {
		skip, c, err := benchFigure(f, false, 1, "")
		if err != nil {
			return figureRow{}, err
		}
		ref, _, err := benchFigure(f, true, 1, "")
		if err != nil {
			return figureRow{}, err
		}
		if s > 0 && c != cycles {
			return figureRow{}, fmt.Errorf("non-deterministic sim cycles across samples: %d vs %d", c, cycles)
		}
		cycles = c
		skipNs = append(skipNs, skip.NsPerOp())
		noSkipNs = append(noSkipNs, ref.NsPerOp())
		if ns := skip.NsPerOp(); ns > 0 {
			ratios = append(ratios, float64(ref.NsPerOp())/float64(ns))
		}
		if par {
			pres, pc, err := benchFigure(f, false, parJobs, parLayout)
			if err != nil {
				return figureRow{}, err
			}
			if pc != c {
				return figureRow{}, fmt.Errorf("sim cycles diverge at -sim-jobs %d layout %q: serial %d vs parallel %d", parJobs, parLayout, c, pc)
			}
			parNs = append(parNs, pres.NsPerOp())
			if ns := pres.NsPerOp(); ns > 0 {
				parRatios = append(parRatios, float64(skip.NsPerOp())/float64(ns))
			}
		}
	}
	var gateWaitFrac float64
	if par {
		if profCycles != cycles {
			return figureRow{}, fmt.Errorf("sim cycles diverge at -sim-jobs 2: serial %d vs parallel %d", cycles, profCycles)
		}
		// Stage 2: the identity check under the adopted layout, again
		// with a recorder — its decomposition is the gate_wait_frac the
		// timed cells actually experienced, aggregated over the three
		// architecture runs.
		cfg := f.Config()
		cfg.SimJobs = parJobs
		cfg.ShardLayout = parLayout
		rec := hostprof.New()
		cfg.HostProf = rec
		_, c2, err := benchfig.Run(f, &cfg)
		if err != nil {
			return figureRow{}, err
		}
		if c2 != cycles {
			return figureRow{}, fmt.Errorf("sim cycles diverge at -sim-jobs %d layout %q: serial %d vs parallel %d", parJobs, parLayout, cycles, c2)
		}
		gateWaitFrac = rec.Snapshot("", "", "").Decomp.GateShareOfBusy
	}
	row := figureRow{
		Name:           f.Name,
		Model:          string(f.Model),
		SimCyclesPerOp: cycles,
		SkipNsPerOp:    medianInt64(skipNs),
		NoSkipNsPerOp:  medianInt64(noSkipNs),
	}
	row.SkipSimCyclesPerS = cyclesPerSec(cycles, row.SkipNsPerOp)
	row.NoSkipSimCyclesPerS = cyclesPerSec(cycles, row.NoSkipNsPerOp)
	if len(ratios) > 0 {
		row.Speedup = medianFloat64(ratios)
	}
	if par {
		row.ParJobs = parJobs
		row.ParLayout = parLayout
		row.ParNsPerOp = medianInt64(parNs)
		row.ParSimCyclesPerS = cyclesPerSec(cycles, row.ParNsPerOp)
		if len(parRatios) > 0 {
			row.ParSpeedup = medianFloat64(parRatios)
		}
		row.ParRegression = row.ParSpeedup > 0 && row.ParSpeedup < 1
		row.GateWaitFrac = gateWaitFrac
	}
	return row, nil
}

// gate tolerances. Mipsy MemBound rows exist precisely to prove the
// quiescence-skipping scheduler earns its keep on latency-dominated
// configurations (the MXS MemBound row is exempt from the skip floor:
// its out-of-order CPUs block at staggered times, so the serial global
// skip barely fires there — that row's sentinel is the parallel-tick
// floor instead). The default rows only guard against the skip
// machinery itself regressing, so they get a wide hardware-tolerant
// band around the baseline's dimensionless speedup. Parallel speedups
// are floor-checked rather than banded: the baseline may come from a
// host with a different core count, so comparing against it is
// meaningless. Rows the baseline marks par_regression are excluded
// from the floor entirely. The gate-wait ceiling is the one
// cross-baseline comparison: when the sentinel's adopted layout
// matches the baseline's, its gate_wait_frac may not climb more than
// gateWaitSlack above the committed value — profile-guided layouts
// spent that budget down and the gate keeps it spent.
const (
	gateMemBoundMinSpeedup     = 2.0
	gateSpeedupTolerance       = 0.30
	gateParMinSpeedup          = 1.5 // hosts with >= parJobs cores (CI runners)
	gateParMinSpeedupSmallHost = 1.4 // fewer cores: per-CPU local skip + adopted layout
	gateWaitSlack              = 0.05
)

// runGate re-measures every figure of the baseline and applies the
// gate rules. Returns false if any row fails.
func runGate(baseline report, samples int) bool {
	base := map[string]figureRow{}
	for _, row := range baseline.Figures {
		base[row.Name] = row
	}
	pass := true
	fail := func(name, format string, args ...any) {
		pass = false
		fmt.Fprintf(os.Stderr, "benchjson: gate FAIL %s: %s\n", name, fmt.Sprintf(format, args...))
	}
	seen := map[string]bool{}
	for _, f := range benchfig.Figures() {
		b, ok := base[f.Name]
		if !ok {
			fail(f.Name, "not in the baseline (regenerate BENCH_figures.json)")
			continue
		}
		seen[f.Name] = true
		row, err := measureFigure(f, samples)
		if err != nil {
			fail(f.Name, "%v", err)
			continue
		}
		status := "ok"
		memBound := strings.Contains(f.Name, "MemBound")
		switch {
		case row.SimCyclesPerOp != b.SimCyclesPerOp:
			fail(f.Name, "sim cycles changed: %d -> %d (simulation output moved; regenerate the baseline deliberately)",
				b.SimCyclesPerOp, row.SimCyclesPerOp)
			status = "FAIL"
		case memBound && f.Model == core.ModelMipsy:
			if row.Speedup < gateMemBoundMinSpeedup {
				fail(f.Name, "skip speedup %.2fx below the %.1fx floor (baseline %.2fx)",
					row.Speedup, gateMemBoundMinSpeedup, b.Speedup)
				status = "FAIL"
			}
		case memBound:
			// MXS MemBound: the parallel-tick sentinel, checked below.
		default:
			lo := b.Speedup * (1 - gateSpeedupTolerance)
			hi := b.Speedup * (1 + gateSpeedupTolerance)
			if row.Speedup < lo || row.Speedup > hi {
				fail(f.Name, "skip speedup %.2fx outside ±%.0f%% of baseline %.2fx [%.2f, %.2f]",
					row.Speedup, 100*gateSpeedupTolerance, b.Speedup, lo, hi)
				status = "FAIL"
			}
		}
		// A gate_wait_frac outside [0,1] means the hostprof
		// decomposition math broke, which is worth failing on anywhere.
		if row.GateWaitFrac < 0 || row.GateWaitFrac > 1 {
			fail(f.Name, "gate_wait_frac %.4f outside [0,1] (hostprof decomposition broken)", row.GateWaitFrac)
			status = "FAIL"
		}
		if memBound && row.ParJobs > 0 && status == "ok" {
			switch {
			case b.ParRegression:
				// The committed baseline records that sharding loses on its
				// host; the floor would only re-measure that fact.
			default:
				floor := gateParMinSpeedup
				if runtime.NumCPU() < parJobs {
					floor = gateParMinSpeedupSmallHost
				}
				if row.ParSpeedup < floor {
					fail(f.Name, "parallel-tick speedup %.2fx at -sim-jobs %d below the %.2fx floor (baseline %.2fx)",
						row.ParSpeedup, row.ParJobs, floor, b.ParSpeedup)
					status = "FAIL"
				}
			}
			// The ceiling only compares like with like: a different
			// adopted layout means a different host shape, where the
			// baseline's spin share says nothing.
			if row.ParLayout == b.ParLayout && row.GateWaitFrac > b.GateWaitFrac+gateWaitSlack {
				fail(f.Name, "gate_wait_frac %.4f exceeds baseline %.4f by more than %.2f (layout %q)",
					row.GateWaitFrac, b.GateWaitFrac, gateWaitSlack, row.ParLayout)
				status = "FAIL"
			}
		}
		line := fmt.Sprintf("%-28s %12d sim-cycles  speedup %.2fx (baseline %.2fx)",
			f.Name, row.SimCyclesPerOp, row.Speedup, b.Speedup)
		if row.ParJobs > 0 {
			line += fmt.Sprintf("  par %.2fx gwf %.2f", row.ParSpeedup, row.GateWaitFrac)
			if row.ParLayout != "" {
				line += " layout " + row.ParLayout
			}
			if row.ParRegression {
				line += " (par regression)"
			}
		}
		fmt.Fprintf(os.Stderr, "%s  %s\n", line, status)
	}
	for _, row := range baseline.Figures {
		if !seen[row.Name] {
			fail(row.Name, "in the baseline but no longer measured (regenerate BENCH_figures.json)")
		}
	}
	return pass
}

func main() {
	out := flag.String("out", "BENCH_figures.json", "output path")
	figures := flag.String("figures", "", "regexp selecting figure names (\"\" = all)")
	verbose := flag.Bool("v", true, "print a progress line per figure on stderr")
	gatePath := flag.String("gate", "", "CI gate mode: compare fresh measurements against this baseline file and exit non-zero on regression (writes nothing)")
	samples := flag.Int("samples", 1, "measure each cell N times and keep the median ns/op")
	flag.Parse()
	if *samples < 1 {
		*samples = 1
	}

	if *gatePath != "" {
		data, err := os.ReadFile(*gatePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var baseline report
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *gatePath, err)
			os.Exit(1)
		}
		if !runGate(baseline, *samples) {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchjson: gate passed")
		return
	}

	var sel *regexp.Regexp
	if *figures != "" {
		re, err := regexp.Compile(*figures)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		sel = re
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, f := range benchfig.Figures() {
		if sel != nil && !sel.MatchString(f.Name) {
			continue
		}
		row, err := measureFigure(f, *samples)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", f.Name, err)
			os.Exit(1)
		}
		rep.Figures = append(rep.Figures, row)
		if *verbose {
			line := fmt.Sprintf("%-28s %12d sim-cycles  skip %10dns/op  no-skip %10dns/op  %.2fx",
				f.Name, row.SimCyclesPerOp, row.SkipNsPerOp, row.NoSkipNsPerOp, row.Speedup)
			if row.ParJobs > 0 {
				line += fmt.Sprintf("  par%d %10dns/op  %.2fx gwf %.2f", row.ParJobs, row.ParNsPerOp, row.ParSpeedup, row.GateWaitFrac)
				if row.ParLayout != "" {
					line += " layout " + row.ParLayout
				}
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}

	w, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err == nil {
		err = w.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
