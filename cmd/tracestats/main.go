// Command tracestats reduces a JSONL event trace (written by
// cmpsim -trace-out or experiments -trace-out) to the summaries that
// matter when hunting contention: the top-N most-contended resource
// sites, per-CPU structural-stall tallies, the most-invalidated lines,
// and per-level data-access latency.
//
// Traces can mix guest (simulated machine) events with host-timeline
// events (the parallel-tick scheduler's own execution, written by
// parprof -jsonl); -tracks selects which side to summarize, so a
// concatenated or mixed trace still reduces cleanly. Host events get
// their own section: per-kind counts, window/skip totals, and gate-wait
// attribution by site.
//
//	cmpsim -workload eqntott -arch shared-l2 -trace-out run.jsonl
//	tracestats -n 10 run.jsonl
//	parprof -workload mp3d -quick -jsonl host.jsonl
//	tracestats -tracks host host.jsonl
//	gzip -dc run.jsonl.gz | tracestats -      # "-" or no arg = stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cmpsim/internal/hostprof"
	"cmpsim/internal/obsv"
)

func main() {
	topN := flag.Int("n", 10, "show the top N entries of each table")
	tracks := flag.String("tracks", "all", "which event tracks to summarize: guest (simulated machine), host (parallel-tick scheduler), or all")
	flag.Parse()
	switch *tracks {
	case "guest", "host", "all":
	default:
		fmt.Fprintf(os.Stderr, "tracestats: -tracks must be guest, host or all (got %q)\n", *tracks)
		os.Exit(2)
	}

	// "-" (or no argument) reads the trace from stdin, so tracestats
	// composes with streamed pipelines (decompressors, remote copies):
	//   gzip -dc run.jsonl.gz | tracestats -
	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestats:", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}
	events, err := obsv.ReadJSONL(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestats:", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Printf("%s: empty trace\n", name)
		return
	}
	first, last := events[0].Cycle, events[0].Cycle
	for _, ev := range events {
		if ev.Cycle < first {
			first = ev.Cycle
		}
		if ev.Cycle > last {
			last = ev.Cycle
		}
	}

	// Split the trace by track so a mixed file (guest events plus a
	// parprof host timeline) reduces to the sections the reader asked
	// for instead of host windows polluting the guest tables.
	var guest, host []obsv.Event
	for _, ev := range events {
		if obsv.HostKind(ev.Kind) {
			host = append(host, ev)
		} else {
			guest = append(guest, ev)
		}
	}
	fmt.Printf("%s: %d events over cycles [%d, %d] (%d guest, %d host)\n\n",
		name, len(events), first, last, len(guest), len(host))

	if *tracks != "host" {
		contention(guest, *topN)
		structural(guest)
		invalidations(guest, *topN)
		latency(guest)
	}
	if *tracks != "guest" {
		hostSummary(host, *topN)
	}
}

// hostSummary reduces the host-timeline track: scheduling-window and
// skip totals per worker, coordinator serial/parallel time, and
// gate-wait attribution by site (Event field use is documented on the
// EvHost* kinds in internal/obsv).
func hostSummary(events []obsv.Event, topN int) {
	if len(events) == 0 {
		fmt.Println("host timeline: no host events in trace")
		return
	}
	type wtally struct {
		windows, winCycles, winUs uint64
		spins, spinNs             uint64
		skips, skipCycles         uint64
	}
	workers := map[int8]*wtally{}
	get := func(cpu int8) *wtally {
		t := workers[cpu]
		if t == nil {
			t = &wtally{}
			workers[cpu] = t
		}
		return t
	}
	type siteTally struct {
		spins, ns uint64
	}
	sites := map[uint32]*siteTally{}
	var serialUs, barrierUs, barriers uint64
	for _, ev := range events {
		switch ev.Kind {
		case obsv.EvHostWindow:
			t := get(ev.CPU)
			t.windows++
			t.winCycles += uint64(ev.Addr)
			t.winUs += uint64(ev.Arg)
		case obsv.EvHostSpin:
			t := get(ev.CPU)
			t.spins++
			t.spinNs += uint64(ev.Arg)
			s := sites[ev.Arg2]
			if s == nil {
				s = &siteTally{}
				sites[ev.Arg2] = s
			}
			s.spins++
			s.ns += uint64(ev.Arg)
		case obsv.EvHostSkip:
			t := get(ev.CPU)
			t.skips++
			t.skipCycles += uint64(ev.Arg)
		case obsv.EvHostSerial:
			serialUs += uint64(ev.Arg)
		case obsv.EvHostBarrier:
			barriers++
			barrierUs += uint64(ev.Arg)
		}
	}
	fmt.Printf("host timeline: coordinator serial %dµs, %d parallel regions totalling %dµs\n",
		serialUs, barriers, barrierUs)
	if len(workers) > 0 {
		ids := make([]int8, 0, len(workers))
		for c := range workers {
			ids = append(ids, c)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Println("  (windows are attributed to worker tracks, spins/skips to CPUs)")
		fmt.Printf("  %6s %9s %12s %10s %8s %12s %8s %12s\n",
			"id", "windows", "win-cycles", "win-µs", "spins", "spin-ns", "skips", "skip-cycles")
		for _, c := range ids {
			t := workers[c]
			fmt.Printf("  %6d %9d %12d %10d %8d %12d %8d %12d\n",
				c, t.windows, t.winCycles, t.winUs, t.spins, t.spinNs, t.skips, t.skipCycles)
		}
	}
	if len(sites) > 0 {
		keys := make([]uint32, 0, len(sites))
		for k := range sites {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := sites[keys[i]], sites[keys[j]]
			if a.ns != b.ns {
				return a.ns > b.ns
			}
			return keys[i] < keys[j]
		})
		if len(keys) > topN {
			keys = keys[:topN]
		}
		fmt.Println("gate waits by site (by host ns spun):")
		fmt.Printf("  %-14s %10s %12s\n", "site", "spins", "spin-ns")
		for _, k := range keys {
			s := sites[k]
			fmt.Printf("  %-14s %10d %12d\n", hostprof.Site(k).String(), s.spins, s.ns)
		}
	}
	fmt.Println()
}

// site is one (resource, bank) arbitration point.
type site struct {
	res  obsv.ResID
	bank uint32
}

// contention ranks resource sites by total wait cycles — the cycles
// requests spent queued behind earlier grants, the direct currency of
// the paper's contention discussion.
func contention(events []obsv.Event, topN int) {
	type tally struct {
		grants uint64
		wait   uint64
		busy   uint64
	}
	sites := map[site]*tally{}
	for _, ev := range events {
		if ev.Kind != obsv.EvGrant {
			continue
		}
		k := site{ev.Res, ev.Addr}
		t := sites[k]
		if t == nil {
			t = &tally{}
			sites[k] = t
		}
		t.grants++
		t.wait += uint64(ev.Arg2)
		t.busy += uint64(ev.Arg)
	}
	if len(sites) == 0 {
		fmt.Println("contention: no grant events in trace")
		return
	}
	keys := make([]site, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := sites[keys[i]], sites[keys[j]]
		if a.wait != b.wait {
			return a.wait > b.wait
		}
		if keys[i].res != keys[j].res {
			return keys[i].res < keys[j].res
		}
		return keys[i].bank < keys[j].bank
	})
	if len(keys) > topN {
		keys = keys[:topN]
	}
	fmt.Printf("top contention sites (by wait cycles):\n")
	fmt.Printf("  %-14s %10s %12s %12s %10s\n", "site", "grants", "wait", "busy", "wait/grant")
	for _, k := range keys {
		t := sites[k]
		fmt.Printf("  %-14s %10d %12d %12d %10.2f\n",
			fmt.Sprintf("%s[%d]", k.res, k.bank), t.grants, t.wait, t.busy,
			float64(t.wait)/float64(t.grants))
	}
	fmt.Println()
}

// structural tallies the per-CPU events that stall pipelines outright.
func structural(events []obsv.Event) {
	type tally struct {
		mshrFull, wbufFull, robFull, flush, mispredict uint64
	}
	perCPU := map[int8]*tally{}
	for _, ev := range events {
		var f func(*tally)
		switch ev.Kind {
		case obsv.EvMSHRFull:
			f = func(t *tally) { t.mshrFull++ }
		case obsv.EvWBufFull:
			f = func(t *tally) { t.wbufFull++ }
		case obsv.EvROBFull:
			f = func(t *tally) { t.robFull++ }
		case obsv.EvFlush:
			f = func(t *tally) { t.flush++ }
		case obsv.EvMispredict:
			f = func(t *tally) { t.mispredict++ }
		default:
			continue
		}
		t := perCPU[ev.CPU]
		if t == nil {
			t = &tally{}
			perCPU[ev.CPU] = t
		}
		f(t)
	}
	if len(perCPU) == 0 {
		fmt.Println("structural stalls: none in trace")
		fmt.Println()
		return
	}
	cpus := make([]int8, 0, len(perCPU))
	for c := range perCPU {
		cpus = append(cpus, c)
	}
	sort.Slice(cpus, func(i, j int) bool { return cpus[i] < cpus[j] })
	fmt.Printf("structural stalls per CPU (-1 = shared):\n")
	fmt.Printf("  %4s %10s %10s %10s %8s %11s\n", "cpu", "mshr-full", "wbuf-full", "rob-full", "flush", "mispredict")
	for _, c := range cpus {
		t := perCPU[c]
		fmt.Printf("  %4d %10d %10d %10d %8d %11d\n",
			c, t.mshrFull, t.wbufFull, t.robFull, t.flush, t.mispredict)
	}
	fmt.Println()
}

// invalidations ranks lines by coherence invalidations received — the
// sharing hot spots.
func invalidations(events []obsv.Event, topN int) {
	type tally struct {
		actions uint64 // invalidating transactions targeting the line
		copies  uint64 // cache copies removed
	}
	lines := map[uint32]*tally{}
	for _, ev := range events {
		switch ev.Kind {
		case obsv.EvInval, obsv.EvUpgrade, obsv.EvInclEvict:
			t := lines[ev.Addr]
			if t == nil {
				t = &tally{}
				lines[ev.Addr] = t
			}
			t.actions++
			t.copies += uint64(ev.Arg)
		}
	}
	if len(lines) == 0 {
		fmt.Println("invalidations: none in trace")
		fmt.Println()
		return
	}
	keys := make([]uint32, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := lines[keys[i]], lines[keys[j]]
		if a.copies != b.copies {
			return a.copies > b.copies
		}
		return keys[i] < keys[j]
	})
	if len(keys) > topN {
		keys = keys[:topN]
	}
	fmt.Printf("most-invalidated lines:\n")
	fmt.Printf("  %-12s %10s %12s\n", "line", "actions", "copies lost")
	for _, k := range keys {
		t := lines[k]
		fmt.Printf("  0x%08x %10d %12d\n", k, t.actions, t.copies)
	}
	fmt.Println()
}

// latency summarizes data-access service latency per hierarchy level.
func latency(events []obsv.Event) {
	var h obsv.LatencyHist
	for _, ev := range events {
		switch ev.Kind {
		case obsv.EvLoad, obsv.EvStore:
			h.Observe(ev.Level, uint64(ev.Arg))
		}
	}
	fmt.Printf("data-access service latency (cycles):\n%s", h.String())
}
