// Host-profiling composition suite: memsys.Config.HostProf is the one
// observability attachment that rides the sharded parallel path instead
// of forcing it serial. These tests pin the three sides of that
// contract: (1) a run with a recorder attached at SimJobs > 1 stays on
// the parallel path and its sim output is byte-identical to the serial
// run, with or without host telemetry attached alongside; (2) the guest
// per-event instruments (tracer, profiler, sanitizer) still force the
// serial loop even when a host recorder is also attached — the recorder
// then snapshots to an empty profile; (3) the disabled recording path
// (nil receivers everywhere) is branch-only: 0 allocs/op.
package cmpsim_test

import (
	"bytes"
	"strings"
	"testing"

	"cmpsim"
	"cmpsim/internal/check"
	"cmpsim/internal/hostprof"
	"cmpsim/internal/telemetry"
	"cmpsim/internal/workload"
)

// runHostProf is runSharded plus an attached host recorder; it returns
// the observable run and the recorder's snapshot.
func runHostProf(t *testing.T, mk func() cmpsim.Workload, arch cmpsim.Arch, model cmpsim.CPUModel, simJobs int, telem *telemetry.SimMetrics) (parRun, *hostprof.Profile) {
	t.Helper()
	cfg := cmpsim.DefaultConfig()
	cfg.SimJobs = simJobs
	cfg.Metrics = cmpsim.NewMetrics(5000)
	cfg.Telem = telem
	rec := hostprof.New()
	cfg.HostProf = rec
	res, err := cmpsim.RunWorkload(mk(), arch, model, &cfg)
	if err != nil {
		t.Fatalf("%s/%s sim-jobs=%d host-prof: %v", arch, model, simJobs, err)
	}
	run := parRun{res: res, samples: cfg.Metrics.Samples(), hist: cfg.Metrics.Hist().String()}
	return run, rec.Snapshot("mp3d", string(arch), string(model))
}

// requireParallelProfile fails unless the profile proves the run took
// the sharded path and recorded a plausible schedule.
func requireParallelProfile(t *testing.T, p *hostprof.Profile, jobs int) {
	t.Helper()
	if p.Workers == 0 {
		t.Fatalf("sim-jobs=%d with HostProf attached never took the parallel path", jobs)
	}
	if p.Workers > jobs {
		t.Errorf("workers=%d exceeds sim-jobs=%d", p.Workers, jobs)
	}
	if len(p.Worker) != p.Workers {
		t.Errorf("worker stats rows %d != workers %d", len(p.Worker), p.Workers)
	}
	if p.Sched.Windows == 0 {
		t.Error("profile recorded no scheduling windows")
	}
	if p.Sched.WindowCycles == 0 {
		t.Error("profile recorded no window cycles")
	}
	var ticks uint64
	for _, w := range p.Worker {
		ticks += w.Ticks
	}
	if ticks == 0 {
		t.Error("profile recorded no worker ticks")
	}
	d := p.Decomp
	for _, f := range []float64{d.WorkFrac, d.GateWaitFrac, d.BarrierFrac, d.SerialFrac, d.GateShareOfBusy} {
		if f < 0 || f > 1 {
			t.Errorf("decomposition fraction %v outside [0,1]: %+v", f, d)
		}
	}
}

// TestHostProfStaysParallel is the core composition contract: attaching
// a host recorder must not change one bit of sim output and must not
// force the serial path.
func TestHostProfStaysParallel(t *testing.T) {
	mk := func() cmpsim.Workload {
		return workload.NewMP3D(workload.MP3DParams{Particles: 512, Steps: 1})
	}
	ref := runSharded(t, mk, cmpsim.SharedMem, cmpsim.ModelMXS, 1)
	for _, jobs := range []int{2, 4} {
		par, p := runHostProf(t, mk, cmpsim.SharedMem, cmpsim.ModelMXS, jobs, nil)
		diffParRuns(t, jobs, par, ref)
		requireParallelProfile(t, p, jobs)
	}
}

// TestHostProfComposesWithTelemetry pins that the two host-side
// observers stack: live telemetry plus the host profiler, both
// attached, still ride the parallel path with byte-identical output.
func TestHostProfComposesWithTelemetry(t *testing.T) {
	mk := func() cmpsim.Workload {
		return workload.NewMP3D(workload.MP3DParams{Particles: 512, Steps: 1})
	}
	ref := runSharded(t, mk, cmpsim.SharedL2, cmpsim.ModelMXS, 1)
	set := telemetry.New()
	par, p := runHostProf(t, mk, cmpsim.SharedL2, cmpsim.ModelMXS, 2, set.Sim)
	diffParRuns(t, 2, par, ref)
	requireParallelProfile(t, p, 2)
}

// TestHostProfSerialRunEmpty: a recorder attached to a serial run
// (SimJobs <= 1) stays unbound and snapshots to an empty profile whose
// report says so — there is no host schedule to observe.
func TestHostProfSerialRunEmpty(t *testing.T) {
	mk := func() cmpsim.Workload {
		return workload.NewMP3D(workload.MP3DParams{Particles: 256, Steps: 1})
	}
	_, p := runHostProf(t, mk, cmpsim.SharedMem, cmpsim.ModelMipsy, 1, nil)
	if p.Workers != 0 || p.Sched.Windows != 0 || len(p.Waits) != 0 {
		t.Fatalf("serial run produced a non-empty host profile: %+v", p)
	}
	var buf bytes.Buffer
	if err := p.WriteReport(&buf, 10, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "never took the parallel path") {
		t.Errorf("empty-profile report missing the serial-run notice:\n%s", buf.String())
	}
}

// TestHostProfGuestInstrumentsStillSerial: the guest-observability
// attachments keep their forced-serial contract even with a host
// recorder attached — the host profile comes back empty and the sim
// output matches the serial reference.
func TestHostProfGuestInstrumentsStillSerial(t *testing.T) {
	mk := func() cmpsim.Workload {
		return workload.NewMP3D(workload.MP3DParams{Particles: 256, Steps: 1})
	}
	ref := runSharded(t, mk, cmpsim.SharedL2, cmpsim.ModelMXS, 1)
	attach := map[string]func(cfg *cmpsim.Config){
		"trace": func(cfg *cmpsim.Config) { cfg.Trace = cmpsim.NewTraceRing(1 << 16) },
		"prof":  func(cfg *cmpsim.Config) { cfg.Prof = cmpsim.NewProfiler(cfg.NumCPUs, cfg.LineBytes) },
		"check": func(cfg *cmpsim.Config) { cfg.Check = check.New(64) },
	}
	for name, set := range attach {
		t.Run(name, func(t *testing.T) {
			cfg := cmpsim.DefaultConfig()
			cfg.SimJobs = 4
			set(&cfg)
			rec := hostprof.New()
			cfg.HostProf = rec
			res, err := cmpsim.RunWorkload(mk(), cmpsim.SharedL2, cmpsim.ModelMXS, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != ref.res.Cycles {
				t.Errorf("cycles diverge under forced-serial %s: %d vs %d", name, res.Cycles, ref.res.Cycles)
			}
			if p := rec.Snapshot("", "", ""); p.Workers != 0 {
				t.Errorf("%s should force the serial path but host profile has %d workers", name, p.Workers)
			}
		})
	}
}

// TestHostProfJSONRoundTrip: a profile written to JSON and read back
// renders the identical report — cmd/parprof -in is lossless.
func TestHostProfJSONRoundTrip(t *testing.T) {
	mk := func() cmpsim.Workload {
		return workload.NewMP3D(workload.MP3DParams{Particles: 512, Steps: 1})
	}
	_, p := runHostProf(t, mk, cmpsim.SharedMem, cmpsim.ModelMXS, 2, nil)
	var want bytes.Buffer
	if err := p.WriteReport(&want, 15, false); err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := p.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	back, err := hostprof.ReadProfile(&js)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := back.WriteReport(&got, 15, false); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("report after JSON round trip diverges:\nwant:\n%s\ngot:\n%s", want.String(), got.String())
	}
}

// TestHostProfDisabledZeroAlloc pins the disabled-path cost model: with
// no recorder attached the scheduler's instrumentation calls hit nil
// receivers and must allocate nothing.
func TestHostProfDisabledZeroAlloc(t *testing.T) {
	var rec *hostprof.Recorder
	tk := rec.Track(0)
	g := rec.Gate(0)
	co := rec.Coord()
	if tk != nil || g != nil || co != nil {
		t.Fatal("nil recorder must hand out nil sub-recorders")
	}
	allocs := testing.AllocsPerRun(100, func() {
		wt := tk.WindowBegin(0)
		st := g.SpinBegin()
		g.SpinEnd(st, 1, hostprof.SiteAccess, 10)
		tk.Skip(0, 10, 20)
		tk.WindowEnd(wt, 100, 3)
		ct := co.SerialBegin()
		co.SerialEnd(ct)
		bt := co.BarrierBegin()
		co.BarrierEnd(bt, 0, 100)
		co.WindowOpen(0, 100, hostprof.CutGrid)
		rt := co.RunBegin()
		co.RunEnd(rt)
	})
	if allocs != 0 {
		t.Errorf("disabled host-prof path allocates: %v allocs/op", allocs)
	}
}

// BenchmarkHostProfDisabled measures the disabled recording path — the
// cost every parallel tick pays when no recorder is attached. Gated at
// 0 allocs/op in CI next to BenchmarkTracerDisabled/BenchmarkProfDisabled.
func BenchmarkHostProfDisabled(b *testing.B) {
	var rec *hostprof.Recorder
	tk := rec.Track(0)
	g := rec.Gate(0)
	co := rec.Coord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wt := tk.WindowBegin(uint64(i))
		st := g.SpinBegin()
		g.SpinEnd(st, 1, hostprof.SiteMXSImage, uint64(i))
		tk.WindowEnd(wt, uint64(i+100), 4)
		co.WindowOpen(uint64(i), uint64(i+100), hostprof.CutGrid)
	}
}
