package cmpsim_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"cmpsim"
)

func TestPublicAPISurface(t *testing.T) {
	if got := cmpsim.Architectures(); len(got) != 3 {
		t.Fatalf("Architectures = %v", got)
	}
	names := cmpsim.Workloads()
	want := []string{"ear", "eqntott", "fft", "latprobe", "mp3d", "ocean", "pmake", "volpack"}
	sort.Strings(names)
	if len(names) != len(want) {
		t.Fatalf("Workloads = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Workloads = %v, want %v", names, want)
		}
	}
	if _, err := cmpsim.NewWorkload("nope"); err == nil {
		t.Error("unknown workload should error")
	}
	cfg := cmpsim.DefaultConfig()
	if cfg.NumCPUs != 4 || cfg.MemLat != 50 || cfg.SharedL2Lat != 14 {
		t.Errorf("DefaultConfig does not carry the paper's parameters: %+v", cfg)
	}
}

func TestPublicRunAndFigure(t *testing.T) {
	runs := map[cmpsim.Arch]*cmpsim.Result{}
	for _, arch := range cmpsim.Architectures() {
		w, err := cmpsim.NewWorkload("latprobe")
		if err != nil {
			t.Fatal(err)
		}
		res, err := cmpsim.RunWorkload(w, arch, cmpsim.ModelMipsy, nil)
		if err != nil {
			t.Fatal(err)
		}
		runs[arch] = res
		b := cmpsim.BreakdownOf(res)
		if b.Total != float64(res.Cycles) {
			t.Errorf("%s: breakdown total %v != cycles %d", arch, b.Total, res.Cycles)
		}
	}
	fig := cmpsim.BuildFigure("t", "latprobe", cmpsim.ModelMipsy, runs)
	if len(fig.Rows) != 3 || fig.Chart() == "" {
		t.Error("figure incomplete")
	}
}

func TestPublicCheckpointRoundTrip(t *testing.T) {
	w, err := cmpsim.NewWorkload("latprobe")
	if err != nil {
		t.Fatal(err)
	}
	m, err := cmpsim.NewMachine(cmpsim.SharedMem, cmpsim.ModelMipsy, cmpsim.DefaultConfig(), w.MemBytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Configure(m); err != nil {
		t.Fatal(err)
	}
	ck := m.Checkpoint()
	var buf bytes.Buffer
	if err := cmpsim.WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	ck2, err := cmpsim.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(ck2); err != nil {
		t.Fatal(err)
	}
}

// Example demonstrates the one-call entry point.
func Example() {
	w, _ := cmpsim.NewWorkload("ear")
	res, err := cmpsim.RunWorkload(w, cmpsim.SharedL1, cmpsim.ModelMipsy, nil)
	if err != nil {
		panic(err)
	}
	b := cmpsim.BreakdownOf(res)
	fmt.Printf("memory stalls below 1%%: %v\n", b.MemStall()/b.Total < 0.01)
	// Output:
	// memory stalls below 1%: true
}
