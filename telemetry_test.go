// End-to-end test for the host-side telemetry layer: serve the live
// /metrics endpoint, run a parallel campaign against it, scrape while
// jobs are in flight, and reconcile the scrapes with the simulation
// results and the end-of-campaign run report. This is the ISSUE 6
// acceptance criterion as a hermetic test (`make telemetry-smoke` runs
// it under the race detector).
package cmpsim_test

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"cmpsim"
	"cmpsim/internal/memsys"
	"cmpsim/internal/telemetry"
)

// scrape GETs url and returns (body, content type).
func scrape(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// promValue extracts an un-labeled sample value from a Prometheus
// text-format exposition. Returns (0, false) if the metric is absent.
func promValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

func mustPromValue(t *testing.T, text, name string) float64 {
	t.Helper()
	v, ok := promValue(text, name)
	if !ok {
		t.Fatalf("metric %s not found in /metrics output", name)
	}
	return v
}

// TestTelemetryHTTPSmoke runs a six-job campaign (the eqntott quick
// workload across all three architectures at two L2 associativities)
// with the telemetry endpoint live, scraping /metrics concurrently with
// the workers. Mid-flight scrapes must be internally consistent and
// monotone; the final scrape must reconcile exactly with the summed
// simulation results and with BuildReport.
func TestTelemetryHTTPSmoke(t *testing.T) {
	set := telemetry.New()
	srv, err := set.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	var jobs []cmpsim.Job
	for _, assoc := range []uint32{1, 2} {
		for _, arch := range cmpsim.Architectures() {
			cfg := memsys.DefaultConfig()
			cfg.L2Assoc = assoc
			cfg.Telem = set.Sim
			jobs = append(jobs, cmpsim.Job{
				Workload: func() (cmpsim.Workload, error) { return eqntottSmall(), nil },
				Arch:     arch,
				Model:    cmpsim.ModelMipsy,
				Cfg:      cfg,
				Tag:      fmt.Sprintf("%s-assoc%d", arch, assoc),
			})
		}
	}
	n := uint64(len(jobs))
	pool := &cmpsim.RunnerPool{Workers: 4, Telem: set.Runner}

	done := make(chan []cmpsim.JobResult, 1)
	go func() { done <- pool.Run(jobs) }()

	// Scrape until the campaign finishes. Counters only ever grow, so
	// every mid-flight observation must be bounded by the job count and
	// monotone against the previous scrape.
	var results []cmpsim.JobResult
	scrapes := 0
	var prevStarted, prevCycles float64
	for results == nil {
		body, ctype := scrape(t, base+"/metrics")
		scrapes++
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Fatalf("/metrics content type = %q, want text/plain", ctype)
		}
		started := mustPromValue(t, body, "sim_jobs_started_total")
		ticked := mustPromValue(t, body, "sim_cycles_ticked_total")
		skipped := mustPromValue(t, body, "sim_cycles_skipped_total")
		if started < prevStarted || ticked+skipped < prevCycles {
			t.Fatalf("scrape %d went backwards: started %v->%v, cycles %v->%v",
				scrapes, prevStarted, started, prevCycles, ticked+skipped)
		}
		if started > float64(n) {
			t.Fatalf("sim_jobs_started_total = %v, but only %d jobs exist", started, n)
		}
		prevStarted, prevCycles = started, ticked+skipped
		select {
		case results = <-done:
		case <-time.After(2 * time.Millisecond):
		}
	}
	if scrapes < 1 {
		t.Fatal("never scraped the live endpoint")
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", i, jobs[i].Tag, r.Err)
		}
	}

	// Final scrape: the endpoint must agree exactly with the simulation
	// results (every job ran uncached, so scheduler cycles reconcile
	// with the summed per-run cycle counts) and with the run report.
	body, _ := scrape(t, base+"/metrics")
	var simulated uint64
	for _, r := range results {
		simulated += r.Res.Cycles
	}
	ticked := uint64(mustPromValue(t, body, "sim_cycles_ticked_total"))
	skipped := uint64(mustPromValue(t, body, "sim_cycles_skipped_total"))
	if ticked+skipped != simulated {
		t.Errorf("/metrics cycles ticked+skipped = %d+%d = %d, want sum of results %d",
			ticked, skipped, ticked+skipped, simulated)
	}
	if got := uint64(mustPromValue(t, body, "sim_jobs_completed_total")); got != n {
		t.Errorf("sim_jobs_completed_total = %d, want %d", got, n)
	}
	if got := uint64(mustPromValue(t, body, "sim_jobs_failed_total")); got != 0 {
		t.Errorf("sim_jobs_failed_total = %d, want 0", got)
	}
	if got := mustPromValue(t, body, "sim_job_queue_depth"); got != 0 {
		t.Errorf("sim_job_queue_depth = %v, want 0 after drain", got)
	}
	if got := uint64(mustPromValue(t, body, "sim_job_wall_seconds_count")); got != n {
		t.Errorf("sim_job_wall_seconds_count = %d, want %d", got, n)
	}

	rep := set.BuildReport(set.Elapsed())
	if rep.SimCyclesTicked != ticked || rep.SimCyclesSkipped != skipped {
		t.Errorf("run report cycles %d/%d disagree with final scrape %d/%d",
			rep.SimCyclesTicked, rep.SimCyclesSkipped, ticked, skipped)
	}
	if rep.JobsCompleted != n || uint64(len(rep.Jobs)) != n {
		t.Errorf("run report has %d completed / %d records, want %d", rep.JobsCompleted, len(rep.Jobs), n)
	}

	// The sibling debug surfaces must be mounted too.
	vars, _ := scrape(t, base+"/debug/vars")
	if !strings.Contains(vars, `"telemetry"`) {
		t.Error("/debug/vars does not publish the telemetry registry")
	}
	pprofIdx, _ := scrape(t, base+"/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Error("/debug/pprof/ index does not list the goroutine profile")
	}
}
